(* End-to-end pipeline tests: compile IR programs for the bundled machines
   with both the RECORD and the conventional configuration, simulate, and
   compare against the reference interpreter. *)

let machines () =
  [
    Target.Tic25.machine;
    Target.Dsp56.machine;
    Target.Risc32.machine;
    Target.Asip.machine Target.Asip.default;
    Target.Asip.machine ~name:"asip_min"
      {
        Target.Asip.accumulators = 1;
        has_multiplier = false;
        has_mac = false;
        has_saturation = false;
        imm_bits = 6;
        address_regs = 4;
      };
    Target.Asip.machine ~name:"asip_max"
      {
        Target.Asip.accumulators = 2;
        has_multiplier = true;
        has_mac = true;
        has_saturation = true;
        imm_bits = 12;
        address_regs = 8;
      };
  ]

let check_machine_wellformed m =
  match Target.Machine.check m with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" m.Target.Machine.name msg

let test_machines_wellformed () = List.iter check_machine_wellformed (machines ())

(* Compile with given options, execute, compare all outputs with Eval. *)
let check_against_eval ?(options = Record.Options.record_) machine prog inputs =
  let compiled = Record.Pipeline.compile ~options machine prog in
  let got, _cycles = Record.Pipeline.execute compiled ~inputs in
  let expected = Ir.Eval.run_with_inputs prog inputs in
  List.iter
    (fun (name, values) ->
      let actual = List.assoc name got in
      Alcotest.(check (array int))
        (Printf.sprintf "%s/%s output %s" machine.Target.Machine.name
           prog.Ir.Prog.name name)
        values actual)
    expected;
  compiled

let both_options = [ ("record", Record.Options.record_); ("conv", Record.Options.conventional) ]

let check_both machine prog inputs =
  List.map
    (fun (label, options) ->
      (label, check_against_eval ~options machine prog inputs))
    both_options

(* ---- Programs ---------------------------------------------------------- *)

let p_scalar_add =
  Ir.Prog.make ~name:"scalar_add"
    ~decls:
      [
        Ir.Prog.scalar_decl ~storage:Ir.Prog.Input "a";
        Ir.Prog.scalar_decl ~storage:Ir.Prog.Input "b";
        Ir.Prog.scalar_decl ~storage:Ir.Prog.Output "c";
      ]
    [ Ir.Prog.assign (Ir.Mref.scalar "c") Ir.Tree.(var "a" + var "b") ]

let p_mac =
  Ir.Prog.make ~name:"mac"
    ~decls:
      [
        Ir.Prog.scalar_decl ~storage:Ir.Prog.Input "a";
        Ir.Prog.scalar_decl ~storage:Ir.Prog.Input "b";
        Ir.Prog.scalar_decl ~storage:Ir.Prog.Input "c";
        Ir.Prog.scalar_decl ~storage:Ir.Prog.Output "d";
      ]
    [ Ir.Prog.assign (Ir.Mref.scalar "d") Ir.Tree.(var "c" + (var "a" * var "b")) ]

let p_loop_sum =
  Ir.Prog.make ~name:"loop_sum"
    ~decls:
      [
        Ir.Prog.array_decl ~storage:Ir.Prog.Input "xs" 8;
        Ir.Prog.scalar_decl ~storage:Ir.Prog.Output "s";
      ]
    [
      Ir.Prog.assign (Ir.Mref.scalar "s") (Ir.Tree.const 0);
      Ir.Prog.loop "i" 8
        [
          Ir.Prog.assign (Ir.Mref.scalar "s")
            Ir.Tree.(var "s" + ref_ (Ir.Mref.induct "xs" ~ivar:"i"));
        ];
    ]

let p_dot =
  Ir.Prog.make ~name:"dot"
    ~decls:
      [
        Ir.Prog.array_decl ~storage:Ir.Prog.Input "a" 6;
        Ir.Prog.array_decl ~storage:Ir.Prog.Input "b" 6;
        Ir.Prog.scalar_decl ~storage:Ir.Prog.Output "z";
      ]
    [
      Ir.Prog.assign (Ir.Mref.scalar "z") (Ir.Tree.const 0);
      Ir.Prog.loop "i" 6
        [
          Ir.Prog.assign (Ir.Mref.scalar "z")
            Ir.Tree.(
              var "z"
              + ref_ (Ir.Mref.induct "a" ~ivar:"i")
                * ref_ (Ir.Mref.induct "b" ~ivar:"i"));
        ];
    ]

let p_sat =
  Ir.Prog.make ~name:"sat_add"
    ~decls:
      [
        Ir.Prog.scalar_decl ~storage:Ir.Prog.Input "a";
        Ir.Prog.scalar_decl ~storage:Ir.Prog.Input "b";
        Ir.Prog.scalar_decl ~storage:Ir.Prog.Output "plain";
        Ir.Prog.scalar_decl ~storage:Ir.Prog.Output "clamped";
      ]
    [
      Ir.Prog.assign (Ir.Mref.scalar "plain") Ir.Tree.(var "a" + var "b");
      Ir.Prog.assign (Ir.Mref.scalar "clamped")
        Ir.Tree.(sat (var "a" + var "b"));
    ]

let p_shift_scale =
  Ir.Prog.make ~name:"shift_scale"
    ~decls:
      [
        Ir.Prog.scalar_decl ~storage:Ir.Prog.Input "x";
        Ir.Prog.scalar_decl ~storage:Ir.Prog.Output "y";
      ]
    [ Ir.Prog.assign (Ir.Mref.scalar "y") Ir.Tree.(var "x" * const 8 + var "x") ]

let p_nested =
  Ir.Prog.make ~name:"nested"
    ~decls:
      [
        Ir.Prog.array_decl ~storage:Ir.Prog.Input "m" 12;
        Ir.Prog.scalar_decl ~storage:Ir.Prog.Output "s";
      ]
    [
      Ir.Prog.assign (Ir.Mref.scalar "s") (Ir.Tree.const 0);
      Ir.Prog.loop "i" 3
        [
          Ir.Prog.loop "j" 4
            [
              Ir.Prog.assign (Ir.Mref.scalar "s")
                Ir.Tree.(var "s" + ref_ (Ir.Mref.induct "m" ~ivar:"j"));
            ];
        ];
    ]

(* ---- Tests ------------------------------------------------------------- *)

let test_scalar_add () =
  List.iter
    (fun machine ->
      ignore (check_both machine p_scalar_add [ ("a", [| 3 |]); ("b", [| 9 |]) ]))
    (machines ())

let test_mac_uses_multiplier () =
  let compiled =
    check_against_eval Target.Tic25.machine p_mac
      [ ("a", [| 7 |]); ("b", [| -3 |]); ("c", [| 100 |]) ]
  in
  (* RECORD should find LT/MPY/APAC and never spill. *)
  let opcodes = ref [] in
  Target.Asm.iter
    (fun i -> opcodes := i.Target.Instr.opcode :: !opcodes)
    compiled.Record.Pipeline.asm;
  Alcotest.(check bool) "uses APAC" true (List.mem "APAC" !opcodes);
  Alcotest.(check bool) "uses MPY" true (List.mem "MPY" !opcodes)

let test_loop_sum () =
  List.iter
    (fun machine ->
      ignore
        (check_both machine p_loop_sum
           [ ("xs", [| 1; -2; 3; -4; 5; -6; 7; -8 |]) ]))
    (machines ())

let test_dot () =
  List.iter
    (fun machine ->
      ignore
        (check_both machine p_dot
           [ ("a", [| 1; 2; 3; 4; 5; 6 |]); ("b", [| 6; 5; 4; 3; 2; 1 |]) ]))
    (machines ())

let test_sat () =
  List.iter
    (fun machine ->
      ignore
        (check_both machine p_sat [ ("a", [| 30000 |]); ("b", [| 20000 |]) ]))
    (machines ())

let test_shift_scale () =
  List.iter
    (fun machine ->
      ignore (check_both machine p_shift_scale [ ("x", [| 11 |]) ]))
    (machines ())

let test_nested_loops () =
  List.iter
    (fun machine ->
      ignore
        (check_both machine p_nested
           [ ("m", [| 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 |]) ]))
    (machines ())

let test_record_not_larger () =
  (* RECORD code is never larger than the conventional compiler's. *)
  List.iter
    (fun prog ->
      let rec_words =
        Record.Pipeline.words (Record.Pipeline.compile Target.Tic25.machine prog)
      in
      let conv_words =
        Record.Pipeline.words
          (Record.Pipeline.compile ~options:Record.Options.conventional Target.Tic25.machine
             prog)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d <= %d" prog.Ir.Prog.name rec_words conv_words)
        true (rec_words <= conv_words))
    [ p_scalar_add; p_mac; p_loop_sum; p_dot; p_sat; p_shift_scale ]

let test_stats_populated () =
  let c = Record.Pipeline.compile Target.Tic25.machine p_dot in
  Alcotest.(check bool) "variants tried" true (c.Record.Pipeline.stats.variants_tried > 0);
  Alcotest.(check bool) "cover cost" true (c.Record.Pipeline.stats.cover_cost > 0);
  Alcotest.(check bool) "agu streams" true (c.Record.Pipeline.stats.agu_streams >= 2)

let test_error_on_unknown_var () =
  let bad =
    { Ir.Prog.name = "bad";
      decls = [];
      body = [ Ir.Prog.assign (Ir.Mref.scalar "q") (Ir.Tree.const 0) ] }
  in
  Alcotest.check_raises "invalid program"
    (Record.Pipeline.Error "invalid program: undeclared variable q") (fun () ->
      ignore (Record.Pipeline.compile Target.Tic25.machine bad))

let suites =
  [
    ( "pipeline",
      [
        Alcotest.test_case "machines well-formed" `Quick test_machines_wellformed;
        Alcotest.test_case "scalar add" `Quick test_scalar_add;
        Alcotest.test_case "mac uses multiplier" `Quick test_mac_uses_multiplier;
        Alcotest.test_case "loop sum" `Quick test_loop_sum;
        Alcotest.test_case "dot product" `Quick test_dot;
        Alcotest.test_case "saturation" `Quick test_sat;
        Alcotest.test_case "shift scale" `Quick test_shift_scale;
        Alcotest.test_case "nested loops" `Quick test_nested_loops;
        Alcotest.test_case "record never larger" `Quick test_record_not_larger;
        Alcotest.test_case "stats populated" `Quick test_stats_populated;
        Alcotest.test_case "unknown variable" `Quick test_error_on_unknown_var;
      ] );
  ]

(* ---- Random-program differential testing --------------------------------- *)

(* Random DSP-ish programs. Multiplications and shifts take leaf operands
   only, keeping every within-statement intermediate far from the 16-bit
   boundary (the fixed-point contract, DESIGN.md §4); statement stores wrap
   identically in the interpreter and on the machines. *)
let gen_prog =
  let open QCheck.Gen in
  let scalar_leaf =
    oneof
      [
        map (fun k -> Ir.Tree.Const k) (int_range 0 5);
        map Ir.Tree.var (oneofl [ "a"; "b"; "u"; "v"; "w" ]);
      ]
  in
  let leaf ~ivar =
    match ivar with
    | None -> scalar_leaf
    | Some iv ->
      oneof
        [
          scalar_leaf;
          map
            (fun base -> Ir.Tree.ref_ (Ir.Mref.induct base ~ivar:iv))
            (oneofl [ "p"; "q" ]);
        ]
  in
  let tree ~ivar =
    sized_size (int_range 0 12)
      (fix (fun self n ->
           if n = 0 then leaf ~ivar
           else
             oneof
               [
                 leaf ~ivar;
                 (* wide ops recurse; narrow ops take leaves *)
                 map2
                   (fun op (x, y) -> Ir.Tree.Binop (op, x, y))
                   (oneofl Ir.Op.[ Add; Sub; And; Or; Xor ])
                   (pair (self (n / 2)) (self (n / 2)));
                 map2
                   (fun (x, y) op -> Ir.Tree.Binop (op, x, y))
                   (pair (leaf ~ivar) (leaf ~ivar))
                   (oneofl Ir.Op.[ Mul ]);
                 map2
                   (fun x k -> Ir.Tree.Binop (Ir.Op.Shl, x, Ir.Tree.Const k))
                   (leaf ~ivar) (int_range 0 3);
                 map (fun x -> Ir.Tree.Unop (Ir.Op.Neg, x)) (self (n / 2));
                 map (fun x -> Ir.Tree.Unop (Ir.Op.Sat, x)) (self (n / 2));
               ]))
  in
  let stmt ~ivar =
    let dst =
      match ivar with
      | None -> map Ir.Mref.scalar (oneofl [ "u"; "v"; "w" ])
      | Some iv ->
        oneof
          [
            map Ir.Mref.scalar (oneofl [ "u"; "v"; "w" ]);
            map (fun base -> Ir.Mref.induct base ~ivar:iv) (oneofl [ "p"; "q" ]);
          ]
    in
    map2 (fun d t -> Ir.Prog.assign d t) dst (tree ~ivar)
  in
  let item idx =
    oneof
      [
        stmt ~ivar:None;
        (let iv = Printf.sprintf "i%d" idx in
         map2
           (fun count body -> Ir.Prog.loop iv count body)
           (int_range 1 8)
           (list_size (int_range 1 3) (stmt ~ivar:(Some iv))));
      ]
  in
  let* n = int_range 1 4 in
  let rec items k =
    if k >= n then return []
    else
      let* i = item k in
      let* rest = items (k + 1) in
      return (i :: rest)
  in
  items 0

let random_prog_decls =
  [
    Ir.Prog.scalar_decl ~storage:Ir.Prog.Input "a";
    Ir.Prog.scalar_decl ~storage:Ir.Prog.Input "b";
    Ir.Prog.array_decl ~storage:Ir.Prog.Input "p" 8;
    Ir.Prog.array_decl ~storage:Ir.Prog.Input "q" 8;
    Ir.Prog.scalar_decl ~storage:Ir.Prog.Output "u";
    Ir.Prog.scalar_decl ~storage:Ir.Prog.Output "v";
    Ir.Prog.scalar_decl ~storage:Ir.Prog.Temp "w";
  ]

let random_inputs =
  [
    ("a", [| 3 |]);
    ("b", [| -4 |]);
    ("p", [| 1; -2; 3; -4; 5; 0; 2; -1 |]);
    ("q", [| -5; 4; -3; 2; -1; 0; 1; 3 |]);
  ]

(* The fixed-point programming contract (DESIGN.md §4): every intermediate
   value fits the 16-bit range, except the direct argument of a sat (the
   value saturation exists to clamp). Programs outside the contract are not
   valid fixed-point code and are skipped by the property. *)
let within_contract (prog : Ir.Prog.t) inputs =
  let exception Overflow in
  let cells = Hashtbl.create 16 in
  List.iter
    (fun (d : Ir.Prog.decl) -> Hashtbl.replace cells d.name (Array.make d.size 0))
    prog.Ir.Prog.decls;
  List.iter
    (fun (name, values) ->
      Array.blit values 0 (Hashtbl.find cells name) 0 (Array.length values))
    inputs;
  let fits v = v >= -32768 && v <= 32767 in
  let addr ivals (r : Ir.Mref.t) =
    let cell = Hashtbl.find cells r.base in
    let idx =
      match r.index with
      | Ir.Mref.Direct -> 0
      | Ir.Mref.Elem k -> k
      | Ir.Mref.Induct { ivar; offset; step } ->
        offset + (step * List.assoc ivar ivals)
    in
    (cell, idx)
  in
  (* [top] marks a value whose overflow is acceptable (fed to sat or about
     to be wrapped by the statement store). *)
  let rec eval ~top ivals t =
    let v =
      match t with
      | Ir.Tree.Const k -> k
      | Ir.Tree.Ref r ->
        let cell, idx = addr ivals r in
        cell.(idx)
      | Ir.Tree.Unop (Ir.Op.Sat, a) ->
        Ir.Op.eval_unop Ir.Op.Sat ~width:16 (eval ~top:true ivals a)
      | Ir.Tree.Unop (op, a) ->
        Ir.Op.eval_unop op ~width:16 (eval ~top:false ivals a)
      | Ir.Tree.Binop (op, a, b) ->
        Ir.Op.eval_binop op (eval ~top:false ivals a) (eval ~top:false ivals b)
    in
    if (not top) && not (fits v) then raise Overflow;
    v
  in
  let rec item ivals = function
    | Ir.Prog.Stmt { dst; src } ->
      let v = eval ~top:true ivals src in
      let cell, idx = addr ivals dst in
      cell.(idx) <- Ir.Eval.wrap ~width:16 v
    | Ir.Prog.Loop { ivar; count; body } ->
      for i = 0 to count - 1 do
        List.iter (item ((ivar, i) :: ivals)) body
      done
  in
  match List.iter (item []) prog.Ir.Prog.body with
  | () -> true
  | exception Overflow -> false

let differential_prop machine options =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "random programs: %s/%s == interpreter"
         machine.Target.Machine.name
         (match options.Record.Options.selection with
         | Record.Options.Naive_macro -> "conventional"
         | _ -> "RECORD"))
    ~count:120
    (QCheck.make
       ~print:(fun body ->
         Format.asprintf "%a" Ir.Prog.pp
           { Ir.Prog.name = "rand"; decls = random_prog_decls; body })
       gen_prog)
    (fun body ->
      let prog = { Ir.Prog.name = "rand"; decls = random_prog_decls; body } in
      match Ir.Prog.validate prog with
      | Error _ -> QCheck.assume_fail ()
      | Ok () when not (within_contract prog random_inputs) ->
        QCheck.assume_fail ()
      | Ok () ->
        let compiled = Record.Pipeline.compile ~options machine prog in
        let outs, cycles =
          Record.Pipeline.execute compiled ~inputs:random_inputs
        in
        let expected = Ir.Eval.run_with_inputs prog random_inputs in
        (* Outputs match the interpreter AND the static timing analysis is
           cycle-exact. *)
        List.for_all (fun (n, v) -> List.assoc n outs = v) expected
        && Record.Timing.cycles compiled = cycles)

let differential_suite =
  ( "pipeline.random",
    List.concat_map
      (fun machine ->
        [
          QCheck_alcotest.to_alcotest
            (differential_prop machine Record.Options.record_);
        ])
      (machines ())
    @ [
        QCheck_alcotest.to_alcotest
          (differential_prop Target.Tic25.machine Record.Options.conventional);
        QCheck_alcotest.to_alcotest
          (differential_prop Target.Risc32.machine Record.Options.conventional);
        (* A machine that exists only as text (the mdl library). *)
        QCheck_alcotest.to_alcotest
          (differential_prop
             (Mdl.load
                "machine mdl_rand\nregister acc\nregister t\n\
                 counter idx 4\nagu 3\n\
                 rule ld acc <- mem\nrule st mem <- acc\n\
                 rule ldi acc <- imm8\nrule zero acc <- 0\n\
                 rule add acc <- add(acc, mem)\n\
                 rule sub acc <- sub(acc, mem)\n\
                 rule and acc <- and(acc, mem)\n\
                 rule or acc <- or(acc, mem)\n\
                 rule xor acc <- xor(acc, mem)\n\
                 rule lt t <- mem\nrule mpy acc <- mul(t, mem)\n\
                 rule mac acc <- add(acc, mul(t, mem))\n\
                 rule neg acc <- neg(acc)\nrule not acc <- not(acc)\n\
                 rule sat acc <- sat(acc)\n\
                 rule shl acc <- shl(acc, imm4)\n\
                 rule shr acc <- shr(acc, imm4)")
             Record.Options.record_);
      ] )

let suites = suites @ [ differential_suite ]

(* ---- Constant pool ----------------------------------------------------------- *)

let test_constant_pool () =
  (* A constant that is neither an immediate form nor cheap through the
     accumulator lands in a pool cell initialized at load time. *)
  let prog =
    Dfl.Lower.source
      "program cp; input x; output y; begin y = x * 100; end"
  in
  let c = Record.Pipeline.compile Target.Tic25.machine prog in
  let outs, _ = Record.Pipeline.execute c ~inputs:[ ("x", [| 7 |]) ] in
  Alcotest.(check int) "result" 700 (List.assoc "y" outs).(0);
  (* 100 exceeds MPYK's range on nothing — it fits; force a wide constant. *)
  let prog2 =
    Dfl.Lower.source
      "program cp2; input x; output y; begin y = x * 9999; end"
  in
  let c2 = Record.Pipeline.compile Target.Tic25.machine prog2 in
  Alcotest.(check bool) "pool used" true
    (List.exists (fun (_, v) -> v = 9999) c2.Record.Pipeline.pool);
  let outs2, _ = Record.Pipeline.execute c2 ~inputs:[ ("x", [| 3 |]) ] in
  Alcotest.(check int) "wide multiply" 29997 (List.assoc "y" outs2).(0)

let test_constant_pool_dedup () =
  let prog =
    Dfl.Lower.source
      "program cp3; input a, b; output u, v;\n\
       begin u = a * 9999; v = b * 9999; end"
  in
  let c = Record.Pipeline.compile Target.Tic25.machine prog in
  Alcotest.(check int) "one cell for one value" 1
    (List.length c.Record.Pipeline.pool)

let pool_suite =
  ( "pipeline.pool",
    [
      Alcotest.test_case "constant pool" `Quick test_constant_pool;
      Alcotest.test_case "pool deduplication" `Quick test_constant_pool_dedup;
    ] )

let suites = suites @ [ pool_suite ]

(* ---- Full loop unrolling ------------------------------------------------- *)

let test_unroll_kernels_validate () =
  let options = Record.Options.with_unrolling 16 Record.Options.record_ in
  List.iter
    (fun name ->
      let k = Dspstone.Kernels.find name in
      let prog = Dspstone.Kernels.prog k in
      let c = Record.Pipeline.compile ~options Target.Tic25.machine prog in
      let outs, cycles = Record.Pipeline.execute c ~inputs:k.Dspstone.Kernels.inputs in
      let expected = Dspstone.Kernels.reference_outputs k in
      List.iter
        (fun (n, v) ->
          Alcotest.(check (array int)) (name ^ "/" ^ n) v (List.assoc n outs))
        expected;
      (* Unrolled code must be at least as fast (no loop overhead). *)
      let rolled = Record.Pipeline.compile Target.Tic25.machine prog in
      let _, rolled_cycles =
        Record.Pipeline.execute rolled ~inputs:k.Dspstone.Kernels.inputs
      in
      Alcotest.(check bool) (name ^ " not slower") true (cycles <= rolled_cycles))
    [ "dot_product"; "n_real_updates"; "matrix_1x3"; "fir"; "convolution" ]

let test_unroll_nested () =
  (* Inner loop unrolls, outer survives when over the limit. *)
  let prog =
    Dfl.Lower.source
      "program n; input m[12]; output s;\n\
       begin s = 0;\n\
       for i = 0 to 5 do\n\
       for j = 0 to 1 do s = s + m[j]; end;\n\
       end;\n\
       end"
  in
  let options = Record.Options.with_unrolling 4 Record.Options.record_ in
  let c = Record.Pipeline.compile ~options Target.Tic25.machine prog in
  let inputs = [ ("m", Array.init 12 (fun i -> i)) ] in
  let outs, _ = Record.Pipeline.execute c ~inputs in
  Alcotest.(check int) "nested result" 6 (List.assoc "s" outs).(0);
  (* The outer loop (6 > 4) is still a loop in the listing. *)
  let has_loop = ref false in
  let scan = function
    | Target.Asm.Loop _ -> has_loop := true
    | Target.Asm.Op _ | Target.Asm.Par _ -> ()
  in
  List.iter scan c.Record.Pipeline.asm.Target.Asm.items;
  Alcotest.(check bool) "outer loop kept" true !has_loop

let unroll_random =
  let options = Record.Options.with_unrolling 8 Record.Options.record_ in
  differential_prop Target.Tic25.machine options

let unroll_suite =
  ( "pipeline.unroll",
    [
      Alcotest.test_case "kernels validate unrolled" `Quick
        test_unroll_kernels_validate;
      Alcotest.test_case "nested loops" `Quick test_unroll_nested;
      QCheck_alcotest.to_alcotest unroll_random;
    ] )

let suites = suites @ [ unroll_suite ]
