test/test_dfl.ml: Alcotest Array Dfl Ir List String
