test/test_pipeline.ml: Alcotest Array Dfl Dspstone Format Hashtbl Ir List Mdl Printf QCheck QCheck_alcotest Record Target
