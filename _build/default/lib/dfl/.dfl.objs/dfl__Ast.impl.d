lib/dfl/ast.ml: Format Ir
