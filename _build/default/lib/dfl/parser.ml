exception Error of string

type state = { mutable toks : (Token.t * int) list }

let peek st =
  match st.toks with (t, _) :: _ -> t | [] -> Token.Eof

let line st =
  match st.toks with (_, l) :: _ -> l | [] -> 0

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let fail st fmt =
  Format.kasprintf
    (fun s -> raise (Error (Printf.sprintf "line %d: %s" (line st) s)))
    fmt

let expect st tok =
  if peek st = tok then advance st
  else
    fail st "expected %s, found %s" (Token.to_string tok)
      (Token.to_string (peek st))

let ident st =
  match peek st with
  | Token.Ident name ->
    advance st;
    name
  | t -> fail st "expected identifier, found %s" (Token.to_string t)

(* ---- Expressions -------------------------------------------------------- *)

let rec expr st = binary st 0

(* Precedence levels, loosest first. *)
and levels =
  [|
    [ (Token.Pipe, Ir.Op.Or) ];
    [ (Token.Caret, Ir.Op.Xor) ];
    [ (Token.Amp, Ir.Op.And) ];
    [ (Token.Shl, Ir.Op.Shl); (Token.Shr, Ir.Op.Shr) ];
    [ (Token.Plus, Ir.Op.Add); (Token.Minus, Ir.Op.Sub) ];
    [ (Token.Star, Ir.Op.Mul) ];
  |]

and binary st level =
  if level >= Array.length levels then unary st
  else begin
    let lhs = ref (binary st (level + 1)) in
    let continue_ = ref true in
    while !continue_ do
      match List.assoc_opt (peek st) levels.(level) with
      | Some op ->
        advance st;
        let rhs = binary st (level + 1) in
        lhs := Ast.Binary (op, !lhs, rhs)
      | None -> continue_ := false
    done;
    !lhs
  end

and unary st =
  match peek st with
  | Token.Minus ->
    advance st;
    Ast.Unary (Ir.Op.Neg, unary st)
  | Token.Tilde ->
    advance st;
    Ast.Unary (Ir.Op.Not, unary st)
  | Token.Ksat ->
    advance st;
    expect st Token.Lparen;
    let e = expr st in
    expect st Token.Rparen;
    Ast.Unary (Ir.Op.Sat, e)
  | _ -> primary st

and primary st =
  match peek st with
  | Token.Int k ->
    advance st;
    Ast.Num k
  | Token.Lparen ->
    advance st;
    let e = expr st in
    expect st Token.Rparen;
    e
  | Token.Ident name -> (
    advance st;
    match peek st with
    | Token.Lbracket ->
      advance st;
      let idx = expr st in
      expect st Token.Rbracket;
      Ast.Index (name, idx)
    | _ -> Ast.Name name)
  | t -> fail st "expected expression, found %s" (Token.to_string t)

(* ---- Statements --------------------------------------------------------- *)

let rec stmt st =
  match peek st with
  | Token.Kfor ->
    let l = line st in
    advance st;
    let var = ident st in
    expect st Token.Assign;
    let lo = expr st in
    expect st Token.Kto;
    let hi = expr st in
    expect st Token.Kdo;
    let body = stmts st in
    expect st Token.Kend;
    if peek st = Token.Semi then advance st;
    Ast.For { line = l; var; lo; hi; body }
  | Token.Ident name -> (
    let l = line st in
    advance st;
    match peek st with
    | Token.Lbracket ->
      advance st;
      let idx = expr st in
      expect st Token.Rbracket;
      expect st Token.Assign;
      let rhs = expr st in
      expect st Token.Semi;
      Ast.Assign { line = l; name; index = Some idx; rhs }
    | _ ->
      expect st Token.Assign;
      let rhs = expr st in
      expect st Token.Semi;
      Ast.Assign { line = l; name; index = None; rhs })
  | t -> fail st "expected statement, found %s" (Token.to_string t)

and stmts st =
  if peek st = Token.Kend || peek st = Token.Eof then []
  else
    let s = stmt st in
    s :: stmts st

(* ---- Declarations ------------------------------------------------------- *)

let storage_names st storage =
  let l = line st in
  let one () =
    let name = ident st in
    let size =
      if peek st = Token.Lbracket then begin
        advance st;
        let e = expr st in
        expect st Token.Rbracket;
        Some e
      end
      else None
    in
    Ast.Storage { line = l; storage; name; size }
  in
  let rec more acc =
    if peek st = Token.Comma then begin
      advance st;
      more (one () :: acc)
    end
    else List.rev acc
  in
  let first = one () in
  let ds = more [ first ] in
  expect st Token.Semi;
  ds

let rec decls st =
  match peek st with
  | Token.Kparam ->
    let l = line st in
    advance st;
    let name = ident st in
    expect st Token.Assign;
    let value = expr st in
    expect st Token.Semi;
    Ast.Param { line = l; name; value } :: decls st
  | Token.Kinput ->
    advance st;
    let ds = storage_names st Ast.Input in
    ds @ decls st
  | Token.Koutput ->
    advance st;
    let ds = storage_names st Ast.Output in
    ds @ decls st
  | Token.Kvar ->
    advance st;
    let ds = storage_names st Ast.Var in
    ds @ decls st
  | _ -> []

let parse src =
  let st = { toks = Lexer.tokenize src } in
  expect st Token.Kprogram;
  let name = ident st in
  expect st Token.Semi;
  let ds = decls st in
  expect st Token.Kbegin;
  let body = stmts st in
  expect st Token.Kend;
  (match peek st with
  | Token.Eof -> ()
  | t -> fail st "trailing input: %s" (Token.to_string t));
  { Ast.name; decls = ds; body }
