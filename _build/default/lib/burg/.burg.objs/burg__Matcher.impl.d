lib/burg/matcher.ml: Cover Grammar Hashtbl Ir List Option Pattern Rule String
