type h = { node : Tree.t; id : int; size : int; kids : h array }

(* Shallow shape of a node: constructor, operator, and child *ids*.  With
   children already canonical, two nodes are structurally equal iff their
   keys are equal, so the table never hashes or compares a subtree — every
   probe is O(1) regardless of tree depth.  (Keying on the tree itself with
   the polymorphic hash would re-traverse subtrees at every probe: the
   depth-bounded [Hashtbl.hash] does not short-circuit on sharing.) *)
type key =
  | K_const of int
  | K_ref of Mref.t
  | K_unop of Op.unop * int
  | K_binop of Op.binop * int * int

(* The intern table is shared by every domain of the process (the compile
   server's whole point is one interning table for the fleet), so it is
   lock-striped: keys hash to one of [shard_bits] independent shards, each
   a plain Hashtbl behind its own mutex.  A probe takes exactly one
   uncontended lock on the single-domain path (cheap: futex fast path),
   and concurrent domains interning unrelated structures proceed in
   parallel.  Two domains racing to intern the *same* structure serialize
   on its shard: the loser finds the winner's handle, so canonicality
   (one id, one physical node per structure) holds across domains.

   The per-shard hit/miss counters ride under the shard lock — cheaper
   than contended process-wide atomics on the hot path. *)
let shard_bits = 6

let shard_count = 1 lsl shard_bits

type shard = {
  lock : Mutex.t;
  table : (key, h) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let shards =
  Array.init shard_count (fun _ ->
      {
        lock = Mutex.create ();
        table = Hashtbl.create 256;
        hits = 0;
        misses = 0;
      })

let shard_of key = shards.(Hashtbl.hash key land (shard_count - 1))

(* Monotonic across [clear]: an id is never reused, so tables keyed by id
   (matcher memos) can survive a table reset — stale keys simply never hit
   again.  Atomic because ids are minted concurrently from every domain. *)
let next_id = Atomic.make 0

type stats = { live : int; hits : int; misses : int }

(* [build] only assembles a node from already-interned children — it never
   re-enters the table — so running it under the shard lock is safe and
   makes insertion atomic with the miss check (no duplicate handles under
   a race). *)
let probe key build =
  let s = shard_of key in
  Mutex.lock s.lock;
  match Hashtbl.find_opt s.table key with
  | Some h ->
    s.hits <- s.hits + 1;
    Mutex.unlock s.lock;
    h
  | None ->
    s.misses <- s.misses + 1;
    let node, size, kids = build () in
    let h = { node; id = Atomic.fetch_and_add next_id 1; size; kids } in
    Hashtbl.replace s.table key h;
    Mutex.unlock s.lock;
    h

let no_kids = [||]

let const k = probe (K_const k) (fun () -> (Tree.Const k, 1, no_kids))
let ref_ r = probe (K_ref r) (fun () -> (Tree.Ref r, 1, no_kids))
let var name = ref_ (Mref.scalar name)

let unop op a =
  probe (K_unop (op, a.id)) (fun () ->
      (Tree.Unop (op, a.node), 1 + a.size, [| a |]))

let binop op a b =
  probe (K_binop (op, a.id, b.id)) (fun () ->
      (Tree.Binop (op, a.node, b.node), 1 + a.size + b.size, [| a; b |]))

(* Like the smart constructors, but reusing [t] itself as the canonical
   node when its children already were canonical — re-interning a tree
   that came out of the table allocates nothing. *)
let rec intern (t : Tree.t) =
  match t with
  | Tree.Const k -> const k
  | Tree.Ref r -> ref_ r
  | Tree.Unop (op, a) ->
    let ha = intern a in
    probe (K_unop (op, ha.id)) (fun () ->
        let node = if ha.node == a then t else Tree.Unop (op, ha.node) in
        (node, 1 + ha.size, [| ha |]))
  | Tree.Binop (op, a, b) ->
    let ha = intern a in
    let hb = intern b in
    probe (K_binop (op, ha.id, hb.id)) (fun () ->
        let node =
          if ha.node == a && hb.node == b then t
          else Tree.Binop (op, ha.node, hb.node)
        in
        (node, 1 + ha.size + hb.size, [| ha; hb |]))

let node h = h.node
let id h = h.id
let equal a b = (intern a).node == (intern b).node

let stats () =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let r =
        {
          live = acc.live + Hashtbl.length s.table;
          hits = acc.hits + s.hits;
          misses = acc.misses + s.misses;
        }
      in
      Mutex.unlock s.lock;
      r)
    { live = 0; hits = 0; misses = 0 }
    shards

let clear () =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      Hashtbl.reset s.table;
      s.hits <- 0;
      s.misses <- 0;
      Mutex.unlock s.lock)
    shards
