(** Post-selection cleanups on virtual-register code.

    Two transformations, both running until fixpoint:
    - store/load forwarding: a store of register [r] to a location followed,
      with no intervening write to either, by a load of the same location
      into a register of the same class — the load is deleted and its result
      renamed to [r];
    - dead store elimination of compiler scratch locations (names starting
      with ["$"]) that are never read, plus instructions whose register
      results are never used and that have no other effect.

    Both run before register allocation and within one block at a time
    (loops are barriers). *)

val run : Target.Asm.item list -> Target.Asm.item list

val removed : before:Target.Asm.item list -> after:Target.Asm.item list -> int
(** Number of instructions eliminated (reporting). *)
