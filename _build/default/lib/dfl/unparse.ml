exception Not_printable of string

let check_name name =
  if name = "" then raise (Not_printable "empty name");
  let ok0 c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let ok c = ok0 c || (c >= '0' && c <= '9') in
  if not (ok0 name.[0] && String.for_all ok name) then
    raise (Not_printable (name ^ " is not a DFL identifier"));
  name

let index = function
  | Ir.Mref.Direct -> ""
  | Ir.Mref.Elem k -> Printf.sprintf "[%d]" k
  | Ir.Mref.Induct { ivar; offset = 0; step = 1 } ->
    Printf.sprintf "[%s]" ivar
  | Ir.Mref.Induct { ivar; offset; step = 1 } when offset >= 0 ->
    Printf.sprintf "[%s + %d]" ivar offset
  | Ir.Mref.Induct { ivar; offset; step = 1 } ->
    Printf.sprintf "[%s - %d]" ivar (-offset)
  | Ir.Mref.Induct { ivar; offset; step = _ } ->
    Printf.sprintf "[%d - %s]" offset ivar

let mref (r : Ir.Mref.t) = check_name r.base ^ index r.index

let binop_symbol = function
  | Ir.Op.Add -> "+"
  | Ir.Op.Sub -> "-"
  | Ir.Op.Mul -> "*"
  | Ir.Op.And -> "&"
  | Ir.Op.Or -> "|"
  | Ir.Op.Xor -> "^"
  | Ir.Op.Shl -> "<<"
  | Ir.Op.Shr -> ">>"

let rec expr = function
  | Ir.Tree.Const k -> if k < 0 then Printf.sprintf "(0 - %d)" (-k) else string_of_int k
  | Ir.Tree.Ref r -> mref r
  | Ir.Tree.Unop (Ir.Op.Neg, a) -> Printf.sprintf "(-%s)" (expr a)
  | Ir.Tree.Unop (Ir.Op.Not, a) -> Printf.sprintf "(~%s)" (expr a)
  | Ir.Tree.Unop (Ir.Op.Sat, a) -> Printf.sprintf "sat(%s)" (expr a)
  | Ir.Tree.Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr a) (binop_symbol op) (expr b)

let program (p : Ir.Prog.t) =
  let buf = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "program %s;\n" (check_name p.name);
  List.iter
    (fun (d : Ir.Prog.decl) ->
      let kind =
        match d.storage with
        | Ir.Prog.Input -> "input"
        | Ir.Prog.Output -> "output"
        | Ir.Prog.Temp -> "var"
      in
      if d.size = 1 then out "%s %s;\n" kind (check_name d.name)
      else out "%s %s[%d];\n" kind (check_name d.name) d.size)
    p.decls;
  out "begin\n";
  let rec item indent = function
    | Ir.Prog.Stmt { dst; src } ->
      out "%s%s = %s;\n" indent (mref dst) (expr src)
    | Ir.Prog.Loop { ivar; count; body } ->
      out "%sfor %s = 0 to %d do\n" indent (check_name ivar) (count - 1);
      List.iter (item (indent ^ "  ")) body;
      out "%send;\n" indent
  in
  List.iter (item "  ") p.body;
  out "end\n";
  Buffer.contents buf
