test/test_ir.ml: Alcotest Array Ir List QCheck QCheck_alcotest String
