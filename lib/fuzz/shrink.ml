(* Greedy structural shrinking.

   Every simplification step strictly decreases a well-founded measure
   (item count, tree size, constant magnitude, trip count, declaration
   size, or the number of nonzero input cells), so the greedy fixpoint in
   [minimize] terminates.  Variants that no longer validate are filtered
   out there, which lets the enumeration stay simple (e.g. halving an
   array declaration may orphan an access; validation rejects it). *)

(* ---- expression simplifications ----------------------------------------- *)

let rec tree_variants (t : Ir.Tree.t) : Ir.Tree.t list =
  match t with
  | Ir.Tree.Const 0 -> []
  | Ir.Tree.Const k ->
    Ir.Tree.Const 0 :: (if k / 2 <> 0 then [ Ir.Tree.Const (k / 2) ] else [])
  | Ir.Tree.Ref r -> (
    match r.Ir.Mref.index with
    | Ir.Mref.Induct { offset; _ } ->
      (* freeze the stream at its first element *)
      [
        Ir.Tree.Ref { r with Ir.Mref.index = Ir.Mref.Elem offset };
        Ir.Tree.Const 0;
      ]
    | Ir.Mref.Direct | Ir.Mref.Elem _ -> [ Ir.Tree.Const 0 ])
  | Ir.Tree.Unop (op, a) ->
    (a :: Ir.Tree.Const 0
    :: List.map (fun a' -> Ir.Tree.Unop (op, a')) (tree_variants a))
  | Ir.Tree.Binop (op, a, b) ->
    (a :: b :: Ir.Tree.Const 0
    :: List.map (fun a' -> Ir.Tree.Binop (op, a', b)) (tree_variants a))
    @ List.map (fun b' -> Ir.Tree.Binop (op, a, b')) (tree_variants b)

(* ---- item simplifications ------------------------------------------------- *)

(* Rewrite every access through [ivar] to the element it touches on the
   first iteration, turning a loop body into straight-line code. *)
let subst_ivar ivar item =
  let fix_ref (r : Ir.Mref.t) =
    match r.Ir.Mref.index with
    | Ir.Mref.Induct { ivar = iv; offset; _ } when iv = ivar ->
      { r with Ir.Mref.index = Ir.Mref.Elem offset }
    | _ -> r
  in
  let rec go = function
    | Ir.Prog.Stmt { dst; src } ->
      Ir.Prog.Stmt { dst = fix_ref dst; src = Ir.Tree.map_refs fix_ref src }
    | Ir.Prog.Loop l -> Ir.Prog.Loop { l with body = List.map go l.body }
  in
  go item

(* Each replacement is the list of items standing in for the original one
   (a loop inlines to its whole body). *)
let rec replacements (it : Ir.Prog.item) : Ir.Prog.item list list =
  match it with
  | Ir.Prog.Stmt { dst; src } ->
    List.map (fun src' -> [ Ir.Prog.assign dst src' ]) (tree_variants src)
  | Ir.Prog.Loop { ivar; count; body } ->
    [ List.map (subst_ivar ivar) body ]
    @ (if count > 1 then
         [ Ir.Prog.Loop { ivar; count = 1; body } ]
         :: (if count / 2 > 1 then
               [ [ Ir.Prog.Loop { ivar; count = count / 2; body } ] ]
             else [])
       else [])
    @ List.map
        (fun body' -> [ Ir.Prog.Loop { ivar; count; body = body' } ])
        (items_variants body)

and items_variants (items : Ir.Prog.item list) : Ir.Prog.item list list =
  let rec go prefix = function
    | [] -> []
    | it :: rest ->
      let drop = List.rev_append prefix rest in
      let repl =
        List.map
          (fun stand_in -> List.rev_append prefix (stand_in @ rest))
          (replacements it)
      in
      (drop :: repl) @ go (it :: prefix) rest
  in
  go [] items

let prog_variants (p : Ir.Prog.t) =
  List.map (fun body -> { p with Ir.Prog.body }) (items_variants p.Ir.Prog.body)

(* ---- declaration and input simplifications ----------------------------------- *)

let used_bases (p : Ir.Prog.t) =
  List.concat_map
    (fun (s : Ir.Prog.stmt) ->
      s.Ir.Prog.dst.Ir.Mref.base
      :: List.map (fun (r : Ir.Mref.t) -> r.Ir.Mref.base)
           (Ir.Tree.refs s.Ir.Prog.src))
    (Ir.Prog.stmts p)

let with_prog (case : Gen.case) prog = { case with Gen.prog }

let drop_unused_decls (case : Gen.case) =
  let used = used_bases case.Gen.prog in
  let keep (d : Ir.Prog.decl) = List.mem d.Ir.Prog.name used in
  let decls = List.filter keep case.Gen.prog.Ir.Prog.decls in
  if List.length decls = List.length case.Gen.prog.Ir.Prog.decls then []
  else
    [
      {
        case with
        Gen.prog = { case.Gen.prog with Ir.Prog.decls };
        inputs =
          List.filter
            (fun (n, _) ->
              List.exists (fun (d : Ir.Prog.decl) -> d.Ir.Prog.name = n) decls)
            case.Gen.inputs;
      };
    ]

let shrink_decl_sizes (case : Gen.case) =
  List.filter_map
    (fun (d : Ir.Prog.decl) ->
      if d.Ir.Prog.size <= 1 then None
      else
        let size = d.Ir.Prog.size / 2 in
        let decls =
          List.map
            (fun (d' : Ir.Prog.decl) ->
              if d'.Ir.Prog.name = d.Ir.Prog.name then
                { d' with Ir.Prog.size }
              else d')
            case.Gen.prog.Ir.Prog.decls
        in
        let inputs =
          List.map
            (fun (n, vs) ->
              if n = d.Ir.Prog.name then (n, Array.sub vs 0 size) else (n, vs))
            case.Gen.inputs
        in
        Some
          { case with Gen.prog = { case.Gen.prog with Ir.Prog.decls }; inputs })
    case.Gen.prog.Ir.Prog.decls

let input_variants (case : Gen.case) =
  let set name i v =
    {
      case with
      Gen.inputs =
        List.map
          (fun (n, vs) ->
            if n = name then begin
              let vs' = Array.copy vs in
              vs'.(i) <- v;
              (n, vs')
            end
            else (n, vs))
          case.Gen.inputs;
    }
  in
  let zero_all =
    List.filter_map
      (fun (n, vs) ->
        if Array.exists (fun v -> v <> 0) vs then
          Some { case with Gen.inputs = List.map (fun (n', vs') ->
                     if n' = n then (n', Array.map (fun _ -> 0) vs') else (n', vs'))
                     case.Gen.inputs }
        else None)
      case.Gen.inputs
  in
  let per_cell f =
    List.concat_map
      (fun (n, vs) ->
        List.filter_map Fun.id
          (List.init (Array.length vs) (fun i ->
               match f vs.(i) with
               | Some v -> Some (set n i v)
               | None -> None)))
      case.Gen.inputs
  in
  zero_all
  @ per_cell (fun v -> if v <> 0 then Some 0 else None)
  @ per_cell (fun v -> if v / 2 <> 0 then Some (v / 2) else None)

let case_variants (case : Gen.case) =
  List.map (with_prog case) (prog_variants case.Gen.prog)
  @ drop_unused_decls case @ shrink_decl_sizes case @ input_variants case

(* ---- the greedy fixpoint --------------------------------------------------- *)

let minimize ~still_fails (case : Gen.case) =
  let viable c =
    match Ir.Prog.validate c.Gen.prog with
    | Ok () -> still_fails c
    | Error _ -> false
  in
  let rec go case =
    match List.find_opt viable (case_variants case) with
    | Some smaller -> go smaller
    | None -> case
  in
  go case
