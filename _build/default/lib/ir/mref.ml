type index =
  | Direct
  | Elem of int
  | Induct of { ivar : string; offset : int; step : int }

type t = { base : string; index : index }

let scalar base = { base; index = Direct }

let elem base k =
  assert (k >= 0);
  { base; index = Elem k }

let induct ?(offset = 0) ?(step = 1) base ~ivar =
  if step <> 1 && step <> -1 then invalid_arg "Mref.induct: step must be ±1";
  { base; index = Induct { ivar; offset; step } }

let equal a b = a = b
let compare = Stdlib.compare

let ivars r =
  match r.index with
  | Direct | Elem _ -> []
  | Induct { ivar; _ } -> [ ivar ]

let to_string r =
  match r.index with
  | Direct -> r.base
  | Elem k -> Printf.sprintf "%s[%d]" r.base k
  | Induct { ivar; offset = 0; step = 1 } ->
    Printf.sprintf "%s[%s]" r.base ivar
  | Induct { ivar; offset; step = 1 } when offset > 0 ->
    Printf.sprintf "%s[%s+%d]" r.base ivar offset
  | Induct { ivar; offset; step = 1 } ->
    Printf.sprintf "%s[%s%d]" r.base ivar offset
  | Induct { ivar; offset; step = _ } ->
    Printf.sprintf "%s[%d-%s]" r.base offset ivar

let pp ppf r = Format.pp_print_string ppf (to_string r)
