(** Binary encoding of compiled code for a generated machine, and execution
    of the encoded program on the netlist itself.

    This closes the loop of Fig. 2/3: code selected by the generated
    compiler is assembled into instruction words using the justified bit
    settings, and those words drive the RT-level simulator — so the
    extracted instruction set is validated against the hardware model it
    came from. *)

exception Encode_error of string

val word :
  Rtl.Netlist.t -> Transfer.t -> layout:Target.Layout.t -> Target.Instr.t
  -> int
(** Assembles one instruction: justified control bits from the transfer,
    address fields from the instruction's memory operands, immediate fields
    from its immediate operands.
    @raise Encode_error when a value does not fit its field. *)

val assemble :
  Rtl.Netlist.t -> layout:Target.Layout.t -> Target.Asm.t -> int list
(** The whole (loop-free) program as instruction words.
    @raise Encode_error on loops or unknown opcodes. *)

val run_on_netlist :
  Rtl.Netlist.t ->
  layout:Target.Layout.t ->
  inputs:(string * int array) list ->
  ?pool:(string * int) list ->
  Target.Asm.t ->
  Rtl.Rtsim.state
(** Assembles the program, initializes the netlist's (single) memory from
    the layout, the inputs, and the constant pool, and steps the RT
    simulator through every word. *)

val read_var :
  Rtl.Netlist.t -> Rtl.Rtsim.state -> layout:Target.Layout.t -> string
  -> int array
(** Reads a laid-out variable back from the netlist memory. *)
