(** Algebraic tree transformations.

    RECORD (§4.3.3) generates equivalent variants of each data-flow tree with
    algebraic rules, matches each variant, and keeps the cheapest cover. This
    module produces a bounded, deduplicated set of semantically equal trees.

    Constant folding and identity simplification live behind [`Fold`] because
    the paper's RECORD explicitly does {e not} perform them; enabling them is
    an ablation. *)

type rule =
  | Commute  (** a ⊕ b → b ⊕ a for commutative ⊕ *)
  | Assoc  (** (a ⊕ b) ⊕ c ↔ a ⊕ (b ⊕ c) for associative ⊕ *)
  | Mul_to_shift  (** a * 2^k ↔ a shl k *)
  | Fold  (** constant folding and x+0, x*1, x*0, --x identities *)

val default_rules : rule list
(** [Commute; Assoc; Mul_to_shift] — the paper's configuration. *)

val rewrites : rule list -> Tree.t -> Tree.t list
(** All trees reachable from the argument by one application of one rule at
    one position (without the argument itself). *)

val variants : ?rules:rule list -> ?limit:int -> Tree.t -> Tree.t list
(** Breadth-first closure of {!rewrites} starting from the tree, deduplicated
    structurally, capped at [limit] results (default 64). The original tree is
    always the first element. *)

val equivalent : ?width:int -> Tree.t -> Tree.t -> bool
(** Checks semantic equality on a deterministic battery of assignments to the
    trees' references (used by tests; sound for the rule set above, which is
    semantics-preserving by construction). *)
