(** The RECORD compilation pipeline (paper Fig. 2).

    [compile] takes an explicit machine description and a program through:
    flow-graph construction and tree decomposition, algebraic variant
    generation, iburg-style optimal tree covering, emission, address
    assignment (AGU streams or materialized induction variables), peephole
    cleanup, mode-change minimization, heterogeneous register assignment,
    memory-bank assignment and layout, and code compaction — each phase
    switched by {!Options.t}, so the same pipeline realizes both RECORD and
    the conventional-compiler baseline of Table 1. *)

exception Error of string

type stats = {
  variants_tried : int;  (** algebraic variants matched over all statements *)
  cover_cost : int;  (** summed cost of the selected covers *)
  peephole_removed : int;
  mode_changes : int;  (** mode-setting instructions in the final code *)
  agu_streams : int;  (** address streams assigned to address registers *)
}

type compiled = {
  machine : Target.Machine.t;
  prog : Ir.Prog.t;  (** the source program (before internal rewrites) *)
  options : Options.t;
  asm : Target.Asm.t;
  layout : Target.Layout.t;
  pool : (string * int) list;
      (** constant-pool cells with their load-time values, part of the
          program image the simulator initializes *)
  stats : stats;
  phase_ms : (string * float) list;
      (** wall-clock trace spans, one [(phase, milliseconds)] pair per
          pipeline phase that ran, in execution order *)
}

val compile : ?options:Options.t -> Target.Machine.t -> Ir.Prog.t -> compiled
(** Default options are {!Options.record_}.
    @raise Error when the program cannot be compiled for the machine (no
    cover, AGU exhaustion, register pressure, mode verification failure). *)

val words : compiled -> int
(** Code size in instruction words. *)

val execute : compiled -> inputs:(string * int array) list
  -> (string * int array) list * int
(** Runs the code on the simulator; returns the program outputs and the
    cycle count. *)
